// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 4 (TL2): "transactions attempt to modify the values of two
// randomly chosen transactional objects out of a fixed set of ten, by
// acquiring locks on both. If an acquisition fails, the transaction aborts
// and is retried."
//
// Variants: base, single lease on the first object only, MultiLease on
// both. Expected shape: MultiLease up to ~5x over base (aborts nearly
// vanish); lease-first only a moderate improvement — both paper findings.
// The CSV includes txn_aborts for the abort-rate series.
#include "bench/harness.hpp"
#include "ds/tl2.hpp"

namespace lrsim::bench {
namespace {

Variant tl2_variant(std::string name, TxLeaseMode mode, std::size_t objects) {
  Variant v;
  v.name = std::move(name);
  const bool leases = mode != TxLeaseMode::kNone;
  v.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  v.make = [mode, objects](Machine& m, const BenchOptions& opt) {
    auto bench = std::make_shared<Tl2Bench>(m, Tl2Options{.num_objects = objects, .lease_mode = mode});
    return [bench, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await bench->run_transaction(ctx);
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  std::int64_t objects = 10;
  if (!parse_flags(argc, argv, "fig4_tl2", opt, [&](FlagSet& f) {
        f.add("objects", &objects, "number of transactional objects");
      })) {
    return 0;
  }
  auto samples = run_experiment(
      "Figure 4 (TL2): 2-object transactions over " + std::to_string(objects) + " objects",
      "fig4_tl2",
      {tl2_variant("base", TxLeaseMode::kNone, static_cast<std::size_t>(objects)),
       tl2_variant("lease-first", TxLeaseMode::kFirst, static_cast<std::size_t>(objects)),
       tl2_variant("multi-lease", TxLeaseMode::kBoth, static_cast<std::size_t>(objects))},
      opt);

  // Abort-rate series (the paper's explanation for the win).
  Table aborts{{"threads", "variant", "commits", "aborts", "abort_rate"}};
  for (const auto& s : samples) {
    const double rate = s.stats.txn_commits + s.stats.txn_aborts == 0
                            ? 0.0
                            : static_cast<double>(s.stats.txn_aborts) /
                                  static_cast<double>(s.stats.txn_commits + s.stats.txn_aborts);
    aborts.add_row({static_cast<std::int64_t>(s.threads), s.variant, s.stats.txn_commits,
                    s.stats.txn_aborts, rate});
  }
  std::cout << "-- abort rates --\n";
  aborts.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
