// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 3 (counter): a contended lock protecting a counter variable.
// Variants: TTS lock, TTS lock + lease (the paper's lease recipe for
// locks), ticket lock with linear backoff, CLH queue lock.
//
// Expected shape: plain TTS degrades hard with threads; TTS+lease stays
// flat and on top (the paper reports up to 20x over base at 64 threads and
// ~10x lower energy); queue locks (ticket/CLH) sit between.
//
// The variants come from the workload registry (src/workload/): this bench
// is `ds = counter` swept over every counter lock policy. The same run is
// reproducible from a config file via workload_sweep (docs/WORKLOADS.md);
// tests/workload_equiv_test.cpp pins the output to the pre-registry loops.
#include "bench/harness.hpp"

namespace lrsim::bench {
namespace {

int main_impl(int argc, char** argv) {
  std::int64_t cs_work = 0;
  bool priority = false;
  return run_bench_main(
      argc, argv, "fig3_counter", "Figure 3 (counter): lock-based counter, lock variants",
      [&](const BenchOptions&) {
        workload::WorkloadSpec spec;
        spec.ds = "counter";
        spec.cs_work = static_cast<Cycle>(cs_work);
        std::vector<Variant> vs;
        for (const std::string& policy : workload::policies_for(spec.ds)) {
          vs.push_back(workload_variant(spec, policy));
        }
        if (priority) {
          for (Variant& v : vs) {
            auto base_cfg = v.configure;
            v.configure = [base_cfg](MachineConfig& cfg) {
              base_cfg(cfg);
              cfg.lease_priority_mode = true;
            };
          }
        }
        return vs;
      },
      [&](FlagSet& f) {
        f.add("cs_work", &cs_work, "extra cycles of work inside the critical section");
        f.add("priority", &priority, "enable Section 5 lease prioritization");
      });
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
