// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 3 (counter): a contended lock protecting a counter variable.
// Variants: TTS lock, TTS lock + lease (the paper's lease recipe for
// locks), ticket lock with linear backoff, CLH queue lock.
//
// Expected shape: plain TTS degrades hard with threads; TTS+lease stays
// flat and on top (the paper reports up to 20x over base at 64 threads and
// ~10x lower energy); queue locks (ticket/CLH) sit between.
#include "bench/harness.hpp"
#include "ds/counter.hpp"
#include "sync/cohort_lock.hpp"

namespace lrsim::bench {
namespace {

Variant counter_variant(std::string name, CounterLockKind kind, Cycle cs_work) {
  Variant v;
  v.name = std::move(name);
  v.configure = [](MachineConfig& cfg) { cfg.leases_enabled = true; };
  v.make = [kind, cs_work](Machine& m, const BenchOptions& opt) {
    auto counter = std::make_shared<LockedCounter>(m, kind, cs_work);
    return [counter, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await counter->increment(ctx);
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

Variant cohort_variant(std::string name, bool lease, Cycle cs_work) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease, cs_work](Machine& m, const BenchOptions& opt) {
    auto lock = std::make_shared<CohortTicketLock>(
        m, CohortOptions{.cluster_size = 8, .use_lease = lease});
    auto counter = std::make_shared<Addr>(m.heap().alloc_line());
    return [lock, counter, cs_work, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await lock->lock(ctx);
        const std::uint64_t v2 = co_await ctx.load(*counter);
        if (cs_work > 0) co_await ctx.work(cs_work);
        co_await ctx.store(*counter, v2 + 1);
        co_await lock->unlock(ctx);
        ctx.count_op();
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  std::int64_t cs_work = 0;
  bool priority = false;
  if (!parse_flags(argc, argv, "fig3_counter", opt, [&](FlagSet& f) {
        f.add("cs_work", &cs_work, "extra cycles of work inside the critical section");
        f.add("priority", &priority, "enable Section 5 lease prioritization");
      })) {
    return 0;
  }
  auto vs = std::vector<Variant>{
      counter_variant("tts", CounterLockKind::kTTS, static_cast<Cycle>(cs_work)),
      counter_variant("tts+lease", CounterLockKind::kTTSLease, static_cast<Cycle>(cs_work)),
      counter_variant("ticket", CounterLockKind::kTicket, static_cast<Cycle>(cs_work)),
      counter_variant("clh", CounterLockKind::kCLH, static_cast<Cycle>(cs_work)),
      counter_variant("mcs", CounterLockKind::kMCS, static_cast<Cycle>(cs_work)),
      cohort_variant("cohort-ticket", false, static_cast<Cycle>(cs_work)),
      cohort_variant("cohort+lease", true, static_cast<Cycle>(cs_work))};
  if (priority) {
    for (auto& v : vs) {
      auto base_cfg = v.configure;
      v.configure = [base_cfg](MachineConfig& cfg) {
        base_cfg(cfg);
        cfg.lease_priority_mode = true;
      };
    }
  }
  run_experiment("Figure 3 (counter): lock-based counter, lock variants", "fig3_counter", vs, opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
