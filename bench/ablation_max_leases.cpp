// Copyright (c) 2026 lrsim authors. MIT license.
//
// Ablation for the paper's Section 8 "Implementation Proposal": "the
// variant which allows a core to lease a single line at any given time
// provides a good trade-off ... Empirical evidence suggests that single
// leases are sufficient to significantly improve the performance of
// contended data structures."
//
// We sweep MAX_NUM_LEASES on (a) the leased Treiber stack — a single-lease
// pattern, expected insensitive — and (b) TL2 with MultiLease — a genuinely
// two-line pattern, where MAX_NUM_LEASES = 1 silently disables the group
// (Algorithm 2 ignores oversized groups) and the benefit collapses to base.
#include "bench/harness.hpp"
#include "ds/tl2.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Variant stack_variant(std::string name, int max_leases) {
  Variant v;
  v.name = std::move(name);
  v.configure = [max_leases](MachineConfig& cfg) {
    cfg.leases_enabled = max_leases > 0;
    if (max_leases > 0) cfg.max_num_leases = max_leases;
  };
  v.make = [max_leases](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(m, TreiberOptions{.use_lease = max_leases > 0});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, 5);
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

Variant tl2_variant(std::string name, int max_leases) {
  Variant v;
  v.name = std::move(name);
  v.configure = [max_leases](MachineConfig& cfg) {
    cfg.leases_enabled = max_leases > 0;
    if (max_leases > 0) cfg.max_num_leases = max_leases;
  };
  v.make = [max_leases](Machine& m, const BenchOptions& opt) {
    auto bench = std::make_shared<Tl2Bench>(
        m, Tl2Options{.lease_mode = max_leases > 0 ? TxLeaseMode::kBoth : TxLeaseMode::kNone});
    return [bench, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await bench->run_transaction(ctx);
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "ablation_max_leases", opt)) return 0;
  run_experiment("Ablation (Section 8): MAX_NUM_LEASES sweep, single-lease stack",
                 "ablation_max_leases_stack",
                 {stack_variant("no-lease", 0), stack_variant("max=1", 1),
                  stack_variant("max=2", 2), stack_variant("max=4", 4),
                  stack_variant("max=8", 8)},
                 opt);
  run_experiment("Ablation (Section 8): MAX_NUM_LEASES sweep, TL2 MultiLease",
                 "ablation_max_leases_tl2",
                 {tl2_variant("no-lease", 0), tl2_variant("max=1", 1), tl2_variant("max=2", 2),
                  tl2_variant("max=4", 4)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
