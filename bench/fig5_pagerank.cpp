// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 5 (right): the lock-based Pagerank kernel. "The variable
// corresponding to inaccessible pages in the web graph (around 25%) is
// protected by a contended lock. Protecting this critical section by a
// lease improves throughput by 8x at 32 threads, and allows the
// application to scale."
//
// Each thread processes an equal slice of vertices per iteration; the
// dangling-mass accumulator behind one TTS lock is the serializing hotspot.
// Throughput is vertices processed per second.
#include "bench/harness.hpp"
#include "apps/pagerank.hpp"

namespace lrsim::bench {
namespace {

Variant pr_variant(std::string name, bool lease, std::size_t vertices,
                   PagerankAccum accum = PagerankAccum::kLock) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease, vertices, accum](Machine& m, const BenchOptions& opt) {
    auto pr = std::make_shared<Pagerank>(
        m, PagerankOptions{.num_vertices = vertices, .use_lease = lease, .accum = accum,
                           .seed = opt.seed});
    return [pr, &opt](Ctx& ctx, int t) -> Task<void> {
      // `ops` here = iterations over this thread's slice.
      const std::size_t n = pr->num_vertices();
      const std::size_t threads = static_cast<std::size_t>(ctx.config().num_cores);
      const std::size_t chunk = (n + threads - 1) / threads;
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end = begin + chunk;
      const int iters = std::max(1, opt.ops_per_thread / 50);
      for (int it = 0; it < iters; ++it) {
        co_await pr->process_range(ctx, begin, end);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  std::int64_t vertices = 2048;
  if (!parse_flags(argc, argv, "fig5_pagerank", opt, [&](FlagSet& f) {
        f.add("vertices", &vertices, "graph size");
      })) {
    return 0;
  }
  run_experiment("Figure 5 (right): lock-based Pagerank (25% dangling mass behind one lock)",
                 "fig5_pagerank",
                 {pr_variant("base", false, static_cast<std::size_t>(vertices)),
                  pr_variant("lease", true, static_cast<std::size_t>(vertices)),
                  pr_variant("faa", false, static_cast<std::size_t>(vertices),
                             PagerankAccum::kFaa)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
