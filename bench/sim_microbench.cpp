// Copyright (c) 2026 lrsim authors. MIT license.
//
// Host-side microbenchmarks (google-benchmark) for the simulator engine
// itself: event-queue throughput and end-to-end simulated-instruction rate.
// These guard the simulator's own performance — the figure benches simulate
// millions of cycles and need the engine to stay fast.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "lrsim.hpp"
#include "ds/counter.hpp"
#include "ds/treiber_stack.hpp"
#include "workload/registry.hpp"

namespace lrsim {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      q.schedule_at(static_cast<Cycle>((i * 2654435761u) % 100000), [&sum] { ++sum; });
    }
    q.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventHandle> handles;
    handles.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) handles.push_back(q.schedule_at(static_cast<Cycle>(i), [] {}));
    for (int i = 0; i < n; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    q.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1 << 14);

void BM_SimulatedLoadsPerSecond(benchmark::State& state) {
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.num_cores = 1;
    Machine m{cfg};
    Addr a = m.heap().alloc_line();
    m.spawn(0, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 20000; ++i) {
        benchmark::DoNotOptimize(co_await ctx.load(a));
      }
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("simulated L1-hit loads");
}
BENCHMARK(BM_SimulatedLoadsPerSecond);

void BM_ContendedStackSimulation(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t sim_cycles = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.num_cores = threads;
    cfg.leases_enabled = true;
    Machine m{cfg};
    TreiberStack s{m, {.use_lease = true}};
    for (int t = 0; t < threads; ++t) {
      m.spawn(t, [&](Ctx& ctx) -> Task<void> {
        for (int i = 0; i < 50; ++i) {
          co_await s.push(ctx, 1);
          co_await s.pop(ctx);
        }
      });
    }
    sim_cycles += m.run();
    ops += m.total_stats().ops_completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["sim_cycles_per_iter"] =
      benchmark::Counter(static_cast<double>(sim_cycles) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ContendedStackSimulation)->Arg(4)->Arg(16)->Arg(64);

// End-to-end sim-throughput on the paper's most contended workload: the
// Figure 3 lock-based counter with a lease around the critical section.
// items/s here is *simulated cycles per wall second* — the engine-level
// metric the perf-smoke gate tracks (scripts/bench_check.py), and the
// number the fast-path + flat-directory work is measured against.
void BM_Fig3CounterSimThroughput(benchmark::State& state) {
  const int threads = 32;
  std::uint64_t sim_cycles = 0;
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.num_cores = threads;
    cfg.leases_enabled = true;
    Machine m{cfg};
    LockedCounter c{m, CounterLockKind::kTTSLease};
    for (int t = 0; t < threads; ++t) {
      m.spawn(t, [&](Ctx& ctx) -> Task<void> {
        for (int i = 0; i < 100; ++i) co_await c.increment(ctx);
      });
    }
    sim_cycles += m.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim_cycles));
  state.SetLabel("simulated cycles (contended fig3 counter, 32 cores)");
}
BENCHMARK(BM_Fig3CounterSimThroughput);

// The same workload at 64 cores, swept over the in-run parallel kernel
// (sim/par_kernel.hpp): sim_threads:0 is the serial kernel, n >= 2 shards
// multi-cycle lookahead windows across n host worker threads. Results are
// bit-identical across the sweep (tests/parallel_determinism_test.cpp);
// only wall time may differ. scripts/bench_check.py keys baselines on the
// sim_threads token so serial and parallel entries gate separately, and
// --assert-mt-speedup gates sim_threads:4 >= sim_threads:0 on multi-core
// runners (docs/ENGINE.md "Honest numbers").
void BM_Fig3CounterSimThroughputMT(benchmark::State& state) {
  const int threads = 64;
  const int sim_threads = static_cast<int>(state.range(0));
  std::uint64_t sim_cycles = 0;
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.num_cores = threads;
    cfg.leases_enabled = true;
    Machine m{cfg};
    m.set_sim_threads(sim_threads);
    LockedCounter c{m, CounterLockKind::kTTSLease};
    for (int t = 0; t < threads; ++t) {
      m.spawn(t, [&](Ctx& ctx) -> Task<void> {
        for (int i = 0; i < 100; ++i) co_await c.increment(ctx);
      });
    }
    sim_cycles += m.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim_cycles));
  state.SetLabel("simulated cycles (contended fig3 counter, 64 cores)");
}
BENCHMARK(BM_Fig3CounterSimThroughputMT)
    ->ArgName("sim_threads")
    ->Arg(0)
    ->Arg(2)
    ->Arg(4);

// Open-loop client scheduling at scale: one simulated core drives `clients`
// open-loop clients through the workload registry's timer-wheel engine
// (src/util/timer_wheel.hpp). Up through 10^5 clients the total served ops
// are held constant (100k/clients each) so items/s measures *per-op
// scheduling cost*; above that, ops/client is floored at 1, so the 10^6
// point serves 10^6 ops (10x the budget) and mostly measures steady-state
// wheel churn at full occupancy. The wheel keeps per-op cost near-flat
// where the old linear scan was O(clients) per op. scripts/bench_check.py
// --assert-openloop-scaling gates 10^5 staying within a small factor of
// 10^2 on this metric (both points inside the fixed budget).
void BM_OpenLoopClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int ops = std::max(1, 100000 / clients);
  std::uint64_t served = 0;
  workload::WorkloadSpec spec;
  spec.ds = "counter";
  spec.arrival.kind = workload::ArrivalKind::kFixed;
  spec.arrival.period = 64;
  spec.clients = clients;
  spec.ops = ops;
  const workload::WorkloadRun wr = workload::make_workload(spec, "tts");
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.num_cores = 1;
    if (wr.configure) wr.configure(cfg);
    Machine m{cfg, spec.seed};
    auto worker = wr.build(m);
    m.spawn(0, [worker](Ctx& ctx) { return worker(ctx, 0); });
    m.run();
    served += m.total_stats().ops_completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
  state.SetLabel("served open-loop ops (timer-wheel engine, 1 core)");
}
BENCHMARK(BM_OpenLoopClients)
    ->ArgName("clients")
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

}  // namespace
}  // namespace lrsim

// Custom main so the recorded JSON carries the *simulator's* build type.
// The stock context.library_build_type reflects how the google-benchmark
// library was compiled — on some hosts that is a debug library even when
// this binary is -O2 — so scripts/bench_check.py gates on this key instead.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("sim_build_type", "release");
#else
  benchmark::AddCustomContext("sim_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
