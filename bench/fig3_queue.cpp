// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 3 (queue): the Michael–Scott non-blocking queue, base vs single
// lease (head/tail pointers) vs multi-lease (tail + last node's next) vs a
// randomized-backoff software baseline.
//
// Expected shape: base degrades with threads; single lease is flat and
// best; multi-lease helps over base but trails the single lease (the
// paper's "multiple leases are not necessary for linear structures"
// finding); backoff lands between base and the leases.
//
// The variants come from the workload registry (src/workload/): this bench
// is `ds = ms_queue, mix = 50/50` swept over every queue policy. The same
// run is reproducible from a config file via workload_sweep
// (docs/WORKLOADS.md).
#include "bench/harness.hpp"

namespace lrsim::bench {
namespace {

int main_impl(int argc, char** argv) {
  return run_bench_main(argc, argv, "fig3_queue",
                        "Figure 3 (queue): Michael-Scott queue, lease modes",
                        [](const BenchOptions&) {
                          workload::WorkloadSpec spec;
                          spec.ds = "ms_queue";
                          spec.mix = 0.5;
                          std::vector<Variant> vs;
                          for (const std::string& policy : workload::policies_for(spec.ds)) {
                            vs.push_back(workload_variant(spec, policy));
                          }
                          return vs;
                        });
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
