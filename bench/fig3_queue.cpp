// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 3 (queue): the Michael–Scott non-blocking queue, base vs single
// lease (head/tail pointers) vs multi-lease (tail + last node's next) vs a
// randomized-backoff software baseline.
//
// Expected shape: base degrades with threads; single lease is flat and
// best; multi-lease helps over base but trails the single lease (the
// paper's "multiple leases are not necessary for linear structures"
// finding); backoff lands between base and the leases.
#include "bench/harness.hpp"
#include "ds/ms_queue.hpp"
#include "ds/two_lock_queue.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Variant queue_variant(std::string name, QueueLeaseMode mode, bool backoff) {
  Variant v;
  v.name = std::move(name);
  const bool leases = mode != QueueLeaseMode::kNone;
  v.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  v.make = [mode, backoff](Machine& m, const BenchOptions& opt) {
    auto q = std::make_shared<MsQueue>(m, MsQueueOptions{.lease_mode = mode, .use_backoff = backoff});
    m.spawn(0, [q](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await q->enqueue(ctx, static_cast<std::uint64_t>(i + 1));
    });
    m.run();
    return [q, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await q->enqueue(ctx, 7);
        } else {
          co_await q->dequeue(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

Variant twolock_variant(std::string name, bool lease) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease](Machine& m, const BenchOptions& opt) {
    auto q = std::make_shared<TwoLockQueue>(m, TwoLockQueueOptions{.use_lease = lease});
    m.spawn(0, [q](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await q->enqueue(ctx, static_cast<std::uint64_t>(i + 1));
    });
    m.run();
    return [q, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await q->enqueue(ctx, 7);
        } else {
          co_await q->dequeue(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "fig3_queue", opt)) return 0;
  run_experiment("Figure 3 (queue): Michael-Scott queue, lease modes",
                 "fig3_queue",
                 {queue_variant("base", QueueLeaseMode::kNone, false),
                  queue_variant("lease", QueueLeaseMode::kSingle, false),
                  queue_variant("multi-lease", QueueLeaseMode::kMulti, false),
                  queue_variant("lease-nextptr", QueueLeaseMode::kNextPtr, false),
                  queue_variant("backoff", QueueLeaseMode::kNone, true),
                  twolock_variant("two-lock", false),
                  twolock_variant("two-lock+lease", true)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
