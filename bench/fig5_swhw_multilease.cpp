// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 5 (left): hardware vs software MultiLeases on the TL2 benchmark.
//
// The software emulation issues staggered single-line leases in sorted
// order (Section 4): joint holding is probable, not guaranteed. Expected
// shape: "their performance is comparable; software MultiLeases incur a
// slight, but consistent performance hit".
#include "bench/harness.hpp"
#include "ds/tl2.hpp"

namespace lrsim::bench {
namespace {

Variant tl2_ml_variant(std::string name, bool software) {
  Variant v;
  v.name = std::move(name);
  v.configure = [software](MachineConfig& cfg) {
    cfg.leases_enabled = true;
    cfg.software_multilease = software;
  };
  v.make = [](Machine& m, const BenchOptions& opt) {
    auto bench = std::make_shared<Tl2Bench>(m, Tl2Options{.lease_mode = TxLeaseMode::kBoth});
    return [bench, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await bench->run_transaction(ctx);
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "fig5_swhw_multilease", opt)) return 0;
  run_experiment("Figure 5 (left): hardware vs software MultiLease on TL2",
                 "fig5_swhw_multilease",
                 {tl2_ml_variant("hw-multilease", false), tl2_ml_variant("sw-multilease", true)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
