// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 2: "Throughput of the lock-free Treiber stack with and without
// leases, for 100% updates. The data points are at powers of 2."
//
// Workload: pre-populated stack, every thread runs 100% updates (random
// push/pop mix) with a little local work between ops. Expected shape: the
// base implementation degrades steeply as threads grow (CAS retries and
// coherence traffic per op explode), while the leased stack stays flat —
// several-fold higher at 64 threads.
#include "bench/harness.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Variant stack_variant(std::string name, bool leases, bool backoff) {
  Variant v;
  v.name = std::move(name);
  v.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  v.make = [leases, backoff](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(
        m, TreiberOptions{.use_lease = leases, .use_backoff = backoff});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, static_cast<std::uint64_t>(i + 1));
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "fig2_stack", opt)) return 0;
  run_experiment("Figure 2: Treiber stack, 100% updates, base vs Lease/Release", "fig2_stack",
                 {stack_variant("base", false, false), stack_variant("lease", true, false)}, opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
