// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 2: "Throughput of the lock-free Treiber stack with and without
// leases, for 100% updates. The data points are at powers of 2."
//
// Workload: pre-populated stack, every thread runs 100% updates (random
// push/pop mix) with a little local work between ops. Expected shape: the
// base implementation degrades steeply as threads grow (CAS retries and
// coherence traffic per op explode), while the leased stack stays flat —
// several-fold higher at 64 threads.
//
// The variants come from the workload registry (src/workload/): this bench
// is `ds = treiber_stack, mix = 50/50` under the base and lease policies.
// The same run is reproducible from a config file via workload_sweep
// (docs/WORKLOADS.md); tests/workload_equiv_test.cpp pins the output to
// the pre-registry loops.
#include "bench/harness.hpp"

namespace lrsim::bench {
namespace {

int main_impl(int argc, char** argv) {
  return run_bench_main(argc, argv, "fig2_stack",
                        "Figure 2: Treiber stack, 100% updates, base vs Lease/Release",
                        [](const BenchOptions&) {
                          workload::WorkloadSpec spec;
                          spec.ds = "treiber_stack";
                          spec.mix = 0.5;
                          return std::vector<Variant>{workload_variant(spec, "base"),
                                                      workload_variant(spec, "lease")};
                        });
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
