// Copyright (c) 2026 lrsim authors. MIT license.
//
// Second CRONO-style application (companion to Figure 5's Pagerank):
// level-synchronous BFS whose next-frontier appends funnel through one
// contended lock. Leasing the lock line for each append burst keeps the
// frontier queue from collapsing at high thread counts.
//
// Throughput = frontier vertices processed per second; the whole BFS runs
// once per (variant, threads) point, so cycles-to-completion is the real
// quantity (lower is better; Mops/s folds both together).
#include "bench/harness.hpp"
#include "apps/bfs.hpp"

namespace lrsim::bench {
namespace {

Variant bfs_variant(std::string name, bool lease, std::size_t vertices) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease, vertices](Machine& m, const BenchOptions& opt) {
    auto bfs = std::make_shared<Bfs>(
        m, m.config().num_cores,
        BfsOptions{.num_vertices = vertices, .avg_degree = 6, .use_lease = lease,
                   .seed = opt.seed});
    return [bfs](Ctx& ctx, int) { return bfs->run_worker(ctx); };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  std::int64_t vertices = 2048;
  if (!parse_flags(argc, argv, "app_bfs", opt, [&](FlagSet& f) {
        f.add("vertices", &vertices, "graph size");
      })) {
    return 0;
  }
  run_experiment("Application: CRONO-style BFS (contended frontier lock)", "app_bfs",
                 {bfs_variant("base", false, static_cast<std::size_t>(vertices)),
                  bfs_variant("lease", true, static_cast<std::size_t>(vertices))},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
