// Copyright (c) 2026 lrsim authors. MIT license.
//
// Ablation (Section 5 "Prioritization"): regular coherence requests break
// an existing lease instead of queueing behind it. We measure the leased
// TTS-lock counter with and without the priority bit, plus a mixed
// workload where a *non-leasing* writer pokes the lock line — the case the
// prioritization is designed for (the lock owner's reset must not wait for
// a reader's lease).
#include "bench/harness.hpp"
#include "ds/counter.hpp"

namespace lrsim::bench {
namespace {

Variant counter_variant(std::string name, bool priority) {
  Variant v;
  v.name = std::move(name);
  v.configure = [priority](MachineConfig& cfg) {
    cfg.leases_enabled = true;
    cfg.lease_priority_mode = priority;
  };
  v.make = [](Machine& m, const BenchOptions& opt) {
    auto counter = std::make_shared<LockedCounter>(m, CounterLockKind::kTTSLease);
    return [counter, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await counter->increment(ctx);
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

// A misuse scenario: half the threads lease-and-sit on a line they read;
// the other half just write it. With priority, the writers break the
// readers' leases and fly; without, every write waits for a release.
Variant misuse_variant(std::string name, bool priority) {
  Variant v;
  v.name = std::move(name);
  v.configure = [priority](MachineConfig& cfg) {
    cfg.leases_enabled = true;
    cfg.lease_priority_mode = priority;
  };
  v.make = [](Machine& m, const BenchOptions& opt) {
    auto shared = std::make_shared<Addr>(m.heap().alloc_line());
    return [shared, &opt](Ctx& ctx, int t) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (t % 2 == 0) {
          // Greedy reader: leases and holds far too long.
          co_await ctx.lease(*shared, 2000);
          co_await ctx.load(*shared);
          co_await ctx.work(1500);
          co_await ctx.release(*shared);
        } else {
          co_await ctx.store(*shared, static_cast<std::uint64_t>(i));
        }
        ctx.count_op();
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "ablation_priority", opt)) return 0;
  run_experiment("Ablation: lease priority bit, leased TTS counter", "ablation_priority_counter",
                 {counter_variant("fifo-leases", false), counter_variant("priority-breaks", true)},
                 opt);
  run_experiment("Ablation: lease priority bit under greedy-reader misuse",
                 "ablation_priority_misuse",
                 {misuse_variant("fifo-leases", false), misuse_variant("priority-breaks", true)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
