// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 3 (priority queue): the Lotan–Shavit skiplist priority queue.
// Baseline: fine-grained-locking skiplist (Pugh-style). Lease variant: a
// *sequential* skiplist under one global TTS lock whose line is leased for
// the critical section (the paper's configuration). A third series runs
// the same global lock without the lease, isolating the lease's effect.
//
// Expected shape: throughput decreases with concurrency for the skiplist
// PQ (misses/op grow with the structure), but the lease-based variant
// stays superior, per the paper.
#include "bench/harness.hpp"
#include "ds/skiplist_pq.hpp"
#include "ds/spraylist.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Task<void> prefill_lotan(Ctx& ctx, std::shared_ptr<LotanShavitPq> pq) {
  for (int i = 0; i < kPrefill; ++i) {
    co_await pq->insert(ctx, 1 + ctx.rng().next_below(1 << 16));
  }
}

Task<void> prefill_global(Ctx& ctx, std::shared_ptr<GlobalLockSkiplistPq> pq) {
  for (int i = 0; i < kPrefill; ++i) {
    co_await pq->insert(ctx, 1 + ctx.rng().next_below(1 << 16));
  }
}

Variant lotan_variant() {
  Variant v;
  v.name = "lotan-shavit (fine-grained)";
  v.configure = [](MachineConfig& cfg) { cfg.leases_enabled = false; };
  v.make = [](Machine& m, const BenchOptions& opt) {
    auto pq = std::make_shared<LotanShavitPq>(m);
    m.spawn(0, [pq](Ctx& ctx) { return prefill_lotan(ctx, pq); });
    m.run();
    return [pq, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await pq->insert(ctx, 1 + ctx.rng().next_below(1 << 16));
        } else {
          co_await pq->delete_min(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

Variant spray_variant() {
  Variant v;
  v.name = "spraylist (relaxed)";
  v.configure = [](MachineConfig& cfg) { cfg.leases_enabled = false; };
  v.make = [](Machine& m, const BenchOptions& opt) {
    auto pq = std::make_shared<SprayList>(m);
    m.spawn(0, [pq](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) {
        co_await pq->insert(ctx, 1 + ctx.rng().next_below(1 << 16));
      }
    });
    m.run();
    return [pq, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await pq->insert(ctx, 1 + ctx.rng().next_below(1 << 16));
        } else {
          co_await pq->delete_min(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

Variant global_lock_variant(std::string name, bool lease) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease](Machine& m, const BenchOptions& opt) {
    auto pq = std::make_shared<GlobalLockSkiplistPq>(m, lease);
    m.spawn(0, [pq](Ctx& ctx) { return prefill_global(ctx, pq); });
    m.run();
    return [pq, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await pq->insert(ctx, 1 + ctx.rng().next_below(1 << 16));
        } else {
          co_await pq->delete_min(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  opt.ops_per_thread = 50;  // skiplist walks are long; keep runs friendly
  if (!parse_flags(argc, argv, "fig3_pq", opt)) return 0;
  run_experiment("Figure 3 (priority queue): Lotan-Shavit vs global-lock+lease skiplist PQ",
                 "fig3_pq",
                 {lotan_variant(), global_lock_variant("global-lock", false),
                  global_lock_variant("global-lock+lease", true), spray_variant()},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
