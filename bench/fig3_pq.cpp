// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 3 (priority queue): the Lotan–Shavit skiplist priority queue.
// Baseline: fine-grained-locking skiplist (Pugh-style). Lease variant: a
// *sequential* skiplist under one global TTS lock whose line is leased for
// the critical section (the paper's configuration). A third series runs
// the same global lock without the lease, isolating the lease's effect.
//
// Expected shape: throughput decreases with concurrency for the skiplist
// PQ (misses/op grow with the structure), but the lease-based variant
// stays superior, per the paper.
//
// The variants come from the workload registry (src/workload/): this bench
// is `ds = skiplist_pq, mix = 50/50, keys = 2^16 uniform` over the four pq
// policies. The same run is reproducible from a config file via
// workload_sweep (docs/WORKLOADS.md); tests/workload_equiv_test.cpp pins
// the output to the pre-registry loops.
#include "bench/harness.hpp"

namespace lrsim::bench {
namespace {

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  opt.ops_per_thread = 50;  // skiplist walks are long; keep runs friendly
  return run_bench_main(
      argc, argv, "fig3_pq",
      "Figure 3 (priority queue): Lotan-Shavit vs global-lock+lease skiplist PQ",
      [](const BenchOptions&) {
        workload::WorkloadSpec spec;
        spec.ds = "skiplist_pq";
        spec.mix = 0.5;
        spec.key_range = 1 << 16;
        return std::vector<Variant>{
            workload_variant(spec, "lotan", "lotan-shavit (fine-grained)"),
            workload_variant(spec, "global-lock"),
            workload_variant(spec, "global-lock+lease"),
            workload_variant(spec, "spray", "spraylist (relaxed)")};
      },
      /*extra=*/{}, opt);
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
