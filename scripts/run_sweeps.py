#!/usr/bin/env python3
"""Run workload sweeps from config files and collect validated CSVs.

Usage:
    scripts/run_sweeps.py [--bin build/bench/workload_sweep] [--out sweep_out]
                          [--jobs N] [--sim-threads N] [--merged all.csv]
                          configs/ci_sweep.toml [more configs ...]

For each config this runs the workload_sweep binary (bench/workload_sweep.cpp),
writes <out>/<config-stem>.csv, and validates the result against the pinned
sweep schema (the same check as `bench_check.py --sweep`; schema in
bench/sweep.hpp and docs/WORKLOADS.md). With --merged the per-config CSVs
are concatenated under one header into <out>/<merged>, for plotting a whole
campaign from one file.

Exit status: 0 if every sweep ran and validated, 1 on the first failure.
"""

import argparse
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_check import SWEEP_HEADER, load_sweep  # noqa: E402


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("configs", nargs="+", help="workload config files (configs/*.toml)")
    ap.add_argument("--bin", default=os.path.join("build", "bench", "workload_sweep"),
                    help="workload_sweep binary (default: build/bench/workload_sweep)")
    ap.add_argument("--out", default="sweep_out", help="output directory for the CSVs")
    ap.add_argument("--jobs", type=int, default=1,
                    help="host threads per sweep (0 = one per host CPU)")
    ap.add_argument("--sim-threads", type=int, default=0,
                    help="worker threads inside each simulation (bit-identical)")
    ap.add_argument("--merged", default=None,
                    help="also concatenate every CSV into <out>/MERGED (one header)")
    args = ap.parse_args()

    if not os.path.exists(args.bin):
        print(f"error: {args.bin} not found; build the cpp tree first "
              "(cmake --build build --target workload_sweep)", file=sys.stderr)
        return 1
    os.makedirs(args.out, exist_ok=True)

    merged_rows = []
    total_runs = 0
    for config in args.configs:
        stem = os.path.splitext(os.path.basename(config))[0]
        csv_path = os.path.join(args.out, stem + ".csv")
        cmd = [args.bin, "--config", config, "--csv", csv_path,
               "--jobs", str(args.jobs), "--sim-threads", str(args.sim_threads)]
        print(f"[{stem}] {' '.join(cmd)}")
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            print(f"error: sweep for {config} exited {proc.returncode}", file=sys.stderr)
            return 1
        rows = load_sweep(csv_path)  # exits 2 on schema violations
        total_runs += len(rows)
        print(f"[{stem}] ok: {len(rows)} runs -> {csv_path}")
        if args.merged:
            with open(csv_path, "r", encoding="utf-8") as f:
                merged_rows.extend(f.readlines()[1:])

    if args.merged:
        merged_path = os.path.join(args.out, args.merged)
        with open(merged_path, "w", encoding="utf-8") as f:
            f.write(",".join(SWEEP_HEADER) + "\n")
            f.writelines(merged_rows)
        load_sweep(merged_path)  # cross-config duplicate run keys fail here
        print(f"merged: {total_runs} runs -> {merged_path}")
    print(f"all sweeps passed ({total_runs} runs).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
