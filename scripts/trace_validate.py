#!/usr/bin/env python3
"""Validate an lrsim Perfetto/Chrome trace-event JSON export.

Checks the structural contract that ui.perfetto.dev (and the chrome://tracing
legacy viewer) relies on, so CI catches a malformed exporter before a human
loads a broken trace:

  * the file is valid JSON with a "traceEvents" array;
  * every event carries the required keys for its phase ("X" complete events
    need ts/dur/pid/tid, "M" metadata needs args.name, "i" instants need ts);
  * timestamps and durations are non-negative integers (the exporter writes
    1 trace us == 1 simulated cycle, so fractional values indicate a bug);
  * within each (pid, tid) track, complete events are sorted and
    non-overlapping: next.ts >= prev.ts + prev.dur. The exporter guarantees
    this by greedy lane assignment; overlap would render as garbage stacks;
  * every (pid, tid) referenced by an event has process_name/thread_name
    metadata.

Usage: trace_validate.py TRACE.json [--min-events N]
Exit code 0 = valid, 1 = validation failure, 2 = usage/IO error.
"""

import argparse
import json
import sys
from collections import defaultdict

REQUIRED_BY_PHASE = {
    "X": ("name", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "ph", "ts", "pid", "tid"),
    "M": ("name", "ph", "pid", "args"),
}


def fail(msg):
    print(f"trace_validate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail if fewer than this many span/instant events (default 1)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, "rb") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"trace_validate: cannot read {args.trace}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' is not an array")

    named_procs = set()
    named_threads = set()
    spans_by_track = defaultdict(list)
    n_payload = 0

    for idx, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{idx} is not an object")
        ph = ev.get("ph")
        if ph not in REQUIRED_BY_PHASE:
            fail(f"event #{idx}: unsupported phase {ph!r} (exporter emits X/i/M only)")
        for key in REQUIRED_BY_PHASE[ph]:
            if key not in ev:
                fail(f"event #{idx} ({ph!r}): missing required key {key!r}")
        if ph == "M":
            if ev["name"] == "process_name":
                named_procs.add(ev["pid"])
            elif ev["name"] == "thread_name":
                named_threads.add((ev["pid"], ev.get("tid")))
            if not isinstance(ev["args"].get("name"), str):
                fail(f"event #{idx}: metadata args.name must be a string")
            continue
        n_payload += 1
        for key in ("ts", "dur") if ph == "X" else ("ts",):
            v = ev[key]
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(
                    f"event #{idx}: {key}={v!r} must be a non-negative integer "
                    "(1 trace us == 1 simulated cycle)"
                )
        if ph == "X":
            spans_by_track[(ev["pid"], ev["tid"])].append((ev["ts"], ev["dur"], idx))

    for (pid, tid), spans in sorted(spans_by_track.items()):
        if pid not in named_procs:
            fail(f"pid {pid} has span events but no process_name metadata")
        if (pid, tid) not in named_threads:
            fail(f"track (pid {pid}, tid {tid}) has span events but no thread_name metadata")
        prev_end, prev_idx = -1, None
        for ts, dur, idx in spans:
            if ts < prev_end:
                fail(
                    f"track (pid {pid}, tid {tid}): event #{idx} starts at {ts} "
                    f"before event #{prev_idx} ended at {prev_end} "
                    "(tracks must be sorted and non-overlapping)"
                )
            prev_end, prev_idx = ts + dur, idx

    if n_payload < args.min_events:
        fail(f"only {n_payload} span/instant events (expected >= {args.min_events})")

    dropped = 0
    if isinstance(doc.get("otherData"), dict):
        dropped = doc["otherData"].get("spans_dropped", 0)
    print(
        f"trace_validate: OK: {n_payload} events on {len(spans_by_track)} span tracks "
        f"across {len(named_procs)} processes ({dropped} spans dropped at record time)"
    )


if __name__ == "__main__":
    main()
