#!/usr/bin/env bash
# Reproduce every paper figure/table at full scale and collect the outputs.
#
#   scripts/reproduce.sh [build-dir] [out-dir]
#
# Runs each bench binary with --full (5x operations) and writes per-bench
# logs plus the CSV series into the output directory.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-reproduction}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
echo "== lrsim full reproduction run -> $OUT_DIR =="

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  [[ -x "$bench" ]] || continue
  case "$name" in
    sim_microbench)
      echo "-- $name (engine microbench)"
      "$bench" --benchmark_min_time=0.1s > "$OUT_DIR/$name.txt" 2>&1 || true
      ;;
    *)
      echo "-- $name --full"
      "$bench" --full --csv_dir "$OUT_DIR/csv" > "$OUT_DIR/$name.txt" 2>&1
      ;;
  esac
done

echo "== done. Logs in $OUT_DIR/, CSV series in $OUT_DIR/csv/ =="
