#!/usr/bin/env bash
# Reproduce every paper figure/table at full scale and collect the outputs.
#
#   scripts/reproduce.sh [build-dir] [out-dir]
#
# Runs each bench binary with --full (5x operations) and writes per-bench
# logs plus the CSV series into the output directory. Sweep samples run on a
# host thread pool (JOBS=n to override; defaults to every host CPU) — the
# tables and CSVs are byte-identical to a serial run (docs/ENGINE.md).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-reproduction}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
echo "== lrsim full reproduction run -> $OUT_DIR =="

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  [[ -x "$bench" ]] || continue
  case "$name" in
    sim_microbench)
      echo "-- $name (engine microbench)"
      "$bench" --benchmark_min_time=0.1 \
               --benchmark_out="$OUT_DIR/BENCH_simcore.json" \
               --benchmark_out_format=json > "$OUT_DIR/$name.txt" 2>&1 || true
      ;;
    fig2_stack)
      # The flagship contended-stack figure also exercises the observability
      # sinks (docs/OBSERVABILITY.md): a Perfetto trace, a contention
      # profile, and a stats time series for the observed (lease, max
      # threads) sample. Costs nothing for the other samples.
      echo "-- $name --full --jobs $JOBS (+ observability sinks)"
      "$bench" --full --jobs "$JOBS" --csv_dir "$OUT_DIR/csv" \
               --trace-out "$OUT_DIR/obs/fig2_stack.trace.json" \
               --profile-out "$OUT_DIR/obs/fig2_stack.profile.txt" \
               --samples-out "$OUT_DIR/obs/fig2_stack.samples.csv" \
               --sample-every 5000 > "$OUT_DIR/$name.txt" 2>&1
      ;;
    *)
      echo "-- $name --full --jobs $JOBS"
      "$bench" --full --jobs "$JOBS" --csv_dir "$OUT_DIR/csv" > "$OUT_DIR/$name.txt" 2>&1
      ;;
  esac
done

# Structural check of the exported trace (same validator CI runs). The file
# loads in ui.perfetto.dev.
if [[ -f "$OUT_DIR/obs/fig2_stack.trace.json" ]] && command -v python3 >/dev/null; then
  python3 "$(dirname "$0")/trace_validate.py" "$OUT_DIR/obs/fig2_stack.trace.json"
fi

# Compare the engine microbench against the committed baseline (informational
# here; the CI perf-smoke job enforces it).
if [[ -f "$OUT_DIR/BENCH_simcore.json" ]] && command -v python3 >/dev/null; then
  python3 "$(dirname "$0")/bench_check.py" "$OUT_DIR/BENCH_simcore.json" || true
fi

echo "== done. Logs in $OUT_DIR/, CSV series in $OUT_DIR/csv/ =="
