#!/usr/bin/env python3
"""Perf gate: compare a google-benchmark JSON run against the committed baseline.

Usage:
    scripts/bench_check.py CANDIDATE.json [--baseline BENCH_simcore.json]
                           [--tolerance 0.25] [--update]

The committed baseline (BENCH_simcore.json at the repo root) records the
engine microbenchmarks (bench/sim_microbench.cpp) on the reference CI class
of machine. The gate compares throughput (items_per_second; falls back to
1/real_time) per benchmark name and fails when any benchmark drifts outside
the +/- tolerance band:

  * slower than baseline * (1 - tolerance)  -> a perf regression; fix it.
  * faster than baseline * (1 + tolerance)  -> the baseline is stale; rerun
    with --update and commit the refreshed BENCH_simcore.json so the gate
    keeps teeth (docs/ENGINE.md, "Perf-gate workflow").

--update overwrites the baseline with the candidate and exits 0.

MT speedup mode:
    scripts/bench_check.py --assert-mt-speedup CANDIDATE.json
                           [--mt-min-ratio 0.95]

Asserts the parallel kernel pays for itself: within one JSON,
BM_Fig3CounterSimThroughputMT/sim_threads:4 must reach at least
--mt-min-ratio of the sim_threads:0 entry's throughput. On hosts with
fewer than 4 CPUs (where sim_threads=4 cannot win) it prints an explicit
"SKIPPED (host has N cpus)" line and exits 3 — distinct from pass (0)
and failure (1/2) so CI can surface a mis-provisioned runner.

Open-loop scaling mode:
    scripts/bench_check.py --assert-openloop-scaling CANDIDATE.json
                           [--openloop-max-slowdown 3.0]

Asserts the timer-wheel open-loop engine stays near-flat in client count:
within one JSON, BM_OpenLoopClients/clients:100000 throughput must be at
least 1/--openloop-max-slowdown of the clients:100 entry. The benchmark
holds total served ops constant, so this is pure per-op scheduling cost —
the O(clients)-per-op linear scan fails this by orders of magnitude while
the wheel passes with room to spare. Self-contained within the candidate
(host-independent), like --assert-mt-speedup.

Adaptive-lease gate:
    scripts/bench_check.py --assert-adaptive CANDIDATE.csv
                           [--adaptive-min-frac 0.8]

CANDIDATE.csv is the per-bench CSV that bench/ablation_lease_time writes
(run_experiment schema: variant,threads,ops,...,mops_per_sec,...). At the
largest thread count present, the `lease-adaptive` variant — the per-line
AIMD lease-duration controller — must reach at least --adaptive-min-frac of
the best static MAX_LEASE_TIME variant (`lease-*` excluding adaptive) and
strictly beat the worst one. That is the controller's whole value
proposition: near-best-static throughput without hand-tuning, never
worst-static. Self-contained in one CSV, like --assert-mt-speedup.

Sweep mode:
    scripts/bench_check.py --sweep CANDIDATE.csv [--baseline BASELINE.csv]
                           [--tolerance 0.25]

Validates a workload-sweep CSV (bench/workload_sweep, schema in
bench/sweep.hpp / docs/WORKLOADS.md): the header must match the pinned
schema exactly and every row must parse. With --baseline, also compares
mops_per_sec per run key (all workload axes) against a baseline sweep CSV
under the same tolerance band; comparisons refuse debug-build CSVs
(sim_build_type column) with exit 2, like the JSON perf gate.

Serial vs parallel kernels (--sim-threads) are separate series: an entry's
sim_threads comes from the benchmark-name token ("/sim_threads:N") or, for
whole-file recordings, from context.sim_threads. Serial baselines never gate
parallel candidates and vice versa — wall-clock characteristics differ even
though simulated results are bit-identical. A JSON whose context declares
one sim_threads value while a benchmark name declares another is mixing the
two in one series; that comparison is meaningless and hard-fails (exit 2).
"""

import argparse
import json
import os
import re
import shutil
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                                "BENCH_simcore.json")


def check_release_build(path, doc):
    """Hard-fails (exit 2) when the run came from a debug build.

    A debug baseline makes every future Release candidate look "faster"
    (stale baseline), and a debug candidate fails as a phantom regression.
    Either way the comparison is meaningless, so refuse it outright.

    sim_microbench records its own optimization level under
    context.sim_build_type (custom context key); that is authoritative.
    library_build_type only describes how the google-benchmark *library*
    was compiled (debug on some hosts even under -O2 simulator builds).
    When the custom key is absent (a recording predating it), the library
    build type is the only evidence available and anything but "release"
    hard-fails exactly like a debug sim build — a debug-library recording
    of unknown simulator optimization level is not a usable baseline.
    When both keys are present and disagree (release simulator, debug
    library), the comparison is sound but the harness overhead differs, so
    a notice is printed instead.
    """
    ctx = doc.get("context", {})
    sim = str(ctx.get("sim_build_type", "")).lower()
    lib = str(ctx.get("library_build_type", "")).lower()
    build = sim if sim else lib
    if build == "debug":
        print(f"error: {os.path.relpath(path)} was produced by a DEBUG build; "
              "perf numbers from debug builds are not comparable. Rebuild with "
              "-DCMAKE_BUILD_TYPE=Release and rerun.",
              file=sys.stderr)
        sys.exit(2)
    if not sim and lib and lib != "release":
        print(f"error: {os.path.relpath(path)} has library_build_type = {lib!r} and no "
              "sim_build_type key; without the simulator's own optimization record a "
              "non-release library build is not comparable. Re-record with a current "
              "Release simulator build (sim_microbench writes sim_build_type).",
              file=sys.stderr)
        sys.exit(2)
    if sim == "release" and lib == "debug":
        print(f"notice: {os.path.relpath(path)}: simulator built Release but the "
              "google-benchmark library is a debug build; timing loops carry extra "
              "harness overhead on this host (numbers remain self-consistent).",
              file=sys.stderr)


SIM_THREADS_TOKEN = re.compile(r"(?:^|/)sim_threads:(\d+)")


def sim_threads_of(name, ctx):
    """Effective sim_threads of one entry: name token, else file context, else 0."""
    m = SIM_THREADS_TOKEN.search(name)
    if m:
        return int(m.group(1))
    try:
        return int(ctx.get("sim_threads", 0))
    except (TypeError, ValueError):
        return 0


def load_throughputs(path):
    """Returns {benchmark name: (items/sec, sim_threads)} per aggregate-free entry.

    Hard-fails (exit 2) when the file mixes serial and parallel recordings in
    one series: context.sim_threads declaring one kernel while a benchmark
    name's sim_threads token declares another.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check_release_build(path, doc)
    ctx = doc.get("context", {})
    ctx_st = ctx.get("sim_threads")
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        st = sim_threads_of(name, ctx)
        m = SIM_THREADS_TOKEN.search(name)
        if ctx_st is not None and m and int(m.group(1)) != int(ctx_st):
            print(f"error: {os.path.relpath(path)} mixes sim_threads series: context "
                  f"declares sim_threads={ctx_st} but entry {name!r} declares "
                  f"sim_threads:{m.group(1)}. Record serial and parallel runs in "
                  "separate JSONs (or drop the context key).",
                  file=sys.stderr)
            sys.exit(2)
        if "items_per_second" in b:
            out[name] = (float(b["items_per_second"]), st)
        elif float(b.get("real_time", 0)) > 0:
            # Fall back to inverse wall time; units cancel in the ratio.
            out[name] = (1.0 / float(b["real_time"]), st)
    return out


# The pinned sweep CSV schema (bench/sweep.hpp sweep_csv_header). Columns
# may be *appended* there; renames/reorders break every consumer and fail
# here and in tests/sweep_csv_golden_test.cpp.
SWEEP_HEADER = [
    "ds", "policy", "threads", "clients", "key_range", "dist", "dist_param",
    "mix", "arrival", "arrival_param", "seed", "ops", "cycles",
    "mops_per_sec", "nj_per_op", "msgs_per_op", "misses_per_op",
    "cas_failure_rate", "leases", "releases_voluntary",
    "releases_involuntary", "sim_build_type", "lease_policy", "lease_time",
]

# The run identity: every workload/machine axis, no measurements (ops is
# per-client workload size, an axis; cycles is a result). Two sweep CSVs are
# comparable per matching key.
SWEEP_KEY = ["ds", "policy", "threads", "clients", "key_range", "dist",
             "dist_param", "mix", "arrival", "arrival_param", "seed", "ops",
             "lease_policy", "lease_time"]

SWEEP_INT_COLS = ["threads", "clients", "key_range", "seed", "ops", "cycles",
                  "leases", "releases_voluntary", "releases_involuntary",
                  "lease_time"]
SWEEP_FLOAT_COLS = ["mops_per_sec", "nj_per_op", "msgs_per_op",
                    "misses_per_op", "cas_failure_rate"]


def load_sweep(path):
    """Parses + validates one sweep CSV; returns {run key tuple: row dict}.

    Exits 2 on schema or row-level violations — a malformed CSV must never
    read as "sweep passed".
    """
    import csv as csv_mod

    def fail(msg):
        print(f"error: {os.path.relpath(path)}: {msg}", file=sys.stderr)
        sys.exit(2)

    with open(path, "r", encoding="utf-8", newline="") as f:
        reader = csv_mod.reader(f)
        rows = list(reader)
    if not rows:
        fail("empty file")
    if rows[0] != SWEEP_HEADER:
        fail(f"header mismatch\n  want: {','.join(SWEEP_HEADER)}\n"
             f"   got: {','.join(rows[0])}")
    out = {}
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != len(SWEEP_HEADER):
            fail(f"line {lineno}: {len(row)} fields, want {len(SWEEP_HEADER)}")
        r = dict(zip(SWEEP_HEADER, row))
        for col in SWEEP_INT_COLS:
            if not r[col].lstrip("-").isdigit():
                fail(f"line {lineno}: {col} = {r[col]!r} is not an integer")
        for col in SWEEP_FLOAT_COLS:
            try:
                float(r[col])
            except ValueError:
                fail(f"line {lineno}: {col} = {r[col]!r} is not a number")
        if int(r["threads"]) < 1:
            fail(f"line {lineno}: threads = {r['threads']} < 1")
        if r["sim_build_type"] not in ("release", "debug"):
            fail(f"line {lineno}: sim_build_type = {r['sim_build_type']!r} "
                 "(want release or debug)")
        if r["lease_policy"] not in ("static", "adaptive"):
            fail(f"line {lineno}: lease_policy = {r['lease_policy']!r} "
                 "(want static or adaptive)")
        key = tuple(r[c] for c in SWEEP_KEY)
        if key in out:
            fail(f"line {lineno}: duplicate run key {key}")
        out[key] = r
    if not out:
        fail("no data rows")
    return out


def sweep_is_debug(rows):
    return any(r["sim_build_type"] == "debug" for r in rows.values())


def run_sweep_gate(args):
    cand = load_sweep(args.candidate)
    print(f"{os.path.relpath(args.candidate)}: schema ok, {len(cand)} runs")
    if args.baseline is None:
        return 0

    # Perf comparison only below this line: debug numbers are not comparable
    # (same refusal as the JSON gate's check_release_build).
    for path, rows in ((args.candidate, cand), (args.baseline, load_sweep(args.baseline))):
        if sweep_is_debug(rows):
            print(f"error: {os.path.relpath(path)} contains DEBUG-build rows; "
                  "perf numbers from debug builds are not comparable. Rebuild "
                  "with -DCMAKE_BUILD_TYPE=Release and rerun.", file=sys.stderr)
            sys.exit(2)
    base = load_sweep(args.baseline)

    failures = []
    print(f"{'run':<60} {'baseline':>10} {'candidate':>10} {'ratio':>7}")
    for key in sorted(base):
        label = "/".join(key)
        if key not in cand:
            failures.append(f"{label}: missing from candidate sweep")
            continue
        base_tp = float(base[key]["mops_per_sec"])
        cand_tp = float(cand[key]["mops_per_sec"])
        if base_tp <= 0:
            continue
        ratio = cand_tp / base_tp
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            verdict = "REGRESSION"
            failures.append(f"{label}: {ratio:.2f}x of baseline")
        elif ratio > 1.0 + args.tolerance:
            verdict = "STALE-BASELINE"
            failures.append(f"{label}: {ratio:.2f}x of baseline (rerun baseline)")
        print(f"{label:<60} {base_tp:>10.3f} {cand_tp:>10.3f} {ratio:>6.2f}x  {verdict}")
    if failures:
        print("\nsweep gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nsweep gate passed.")
    return 0


def run_mt_speedup_gate(args):
    """--assert-mt-speedup: the parallel kernel must not lose to serial.

    Compares BM_Fig3CounterSimThroughputMT/sim_threads:4 against the
    sim_threads:0 entry of the *same* JSON — one binary, one host, same
    workload, so the like-with-like series rule does not apply: this is the
    one comparison where crossing the series is the point. On hosts with
    fewer than 4 CPUs (where the parallel kernel cannot win and the
    assertion would only measure barrier overhead) it SKIPs with exit
    status 3 — distinct from pass (0) and failure (1/2) so CI can surface
    a mis-provisioned runner instead of green-washing the gate.
    """
    ncpu = os.cpu_count() or 1
    if ncpu < 4:
        print(f"SKIPPED (host has {ncpu} cpus): --assert-mt-speedup needs a "
              ">= 4-CPU runner for the sim_threads=4 kernel to beat serial; "
              "exiting 3 so CI surfaces the skip instead of a silent pass.")
        return 3
    with open(args.candidate, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check_release_build(args.candidate, doc)
    tp = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if name.startswith("BM_Fig3CounterSimThroughputMT/sim_threads:"):
            if "items_per_second" in b:
                tp[name.rsplit(":", 1)[1]] = float(b["items_per_second"])
    if "0" not in tp or "4" not in tp:
        print("error: --assert-mt-speedup needs BM_Fig3CounterSimThroughputMT "
              "entries at sim_threads:0 and sim_threads:4 in the candidate JSON.",
              file=sys.stderr)
        return 2
    ratio = tp["4"] / tp["0"] if tp["0"] > 0 else float("inf")
    print(f"MT speedup: sim_threads:4 = {tp['4']:.3e}, sim_threads:0 = "
          f"{tp['0']:.3e} items/s -> {ratio:.2f}x (floor {args.mt_min_ratio:.2f}x, "
          f"{ncpu} host CPUs)")
    if ratio < args.mt_min_ratio:
        print(f"error: parallel kernel at sim_threads=4 is {ratio:.2f}x serial "
              f"(floor {args.mt_min_ratio:.2f}x) on a {ncpu}-CPU host — the "
              "lookahead windows are not paying for their barriers.",
              file=sys.stderr)
        return 1
    return 0


def run_openloop_scaling_gate(args):
    """--assert-openloop-scaling: huge client counts must stay near-flat.

    Compares BM_OpenLoopClients/clients:100000 against the clients:100
    entry of the *same* JSON (bench/sim_microbench.cpp): total served ops
    are constant across the axis, so the throughput ratio isolates per-op
    client-scheduling cost. The timer wheel (src/util/timer_wheel.hpp)
    holds this near 1x; a return to per-op linear scanning shows up as a
    ~1000x slowdown and fails loudly. Self-contained in one JSON — no
    reference-host baseline involved — so it runs on any release build.
    """
    with open(args.candidate, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check_release_build(args.candidate, doc)
    tp = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if name.startswith("BM_OpenLoopClients/clients:") and "items_per_second" in b:
            tp[name.rsplit(":", 1)[1]] = float(b["items_per_second"])
    if "100" not in tp or "100000" not in tp:
        print("error: --assert-openloop-scaling needs BM_OpenLoopClients entries "
              "at clients:100 and clients:100000 in the candidate JSON.",
              file=sys.stderr)
        return 2
    slowdown = tp["100"] / tp["100000"] if tp["100000"] > 0 else float("inf")
    print(f"open-loop scaling: clients:100 = {tp['100']:.3e}, clients:100000 = "
          f"{tp['100000']:.3e} served ops/s -> {slowdown:.2f}x per-op slowdown "
          f"(ceiling {args.openloop_max_slowdown:.2f}x)")
    if slowdown > args.openloop_max_slowdown:
        print(f"error: serving an op among 10^5 open-loop clients costs "
              f"{slowdown:.2f}x an op among 10^2 (ceiling "
              f"{args.openloop_max_slowdown:.2f}x) — client scheduling is no "
              "longer O(1) per op; check the timer-wheel engine.",
              file=sys.stderr)
        return 1
    return 0


def run_adaptive_gate(args):
    """--assert-adaptive: the AIMD lease controller must track the best static.

    Reads the per-bench CSV bench/ablation_lease_time writes under --csv_dir
    (run_experiment schema: variant,threads,ops,cycles,mops_per_sec,...) and,
    at the largest thread count present, requires

      lease-adaptive >= --adaptive-min-frac * max(static lease-* variants)
      lease-adaptive >  min(static lease-* variants)

    The static variants are every `lease-*` row except `lease-adaptive`
    itself (lease-50 ... lease-20k: the MAX_LEASE_TIME ablation axis); `base`
    never gates. A controller below the floor is mistuning leases worse than
    a hand-picked constant; one not beating the worst static is not adapting
    at all. Exit codes match the other gates: 0 pass, 1 fail, 2 malformed.
    """
    import csv as csv_mod

    def fail(msg):
        print(f"error: {os.path.relpath(args.candidate)}: {msg}", file=sys.stderr)
        return 2

    with open(args.candidate, "r", encoding="utf-8", newline="") as f:
        rows = list(csv_mod.reader(f))
    if not rows:
        return fail("empty file")
    header = rows[0]
    for col in ("variant", "threads", "mops_per_sec"):
        if col not in header:
            return fail(f"column {col!r} missing (not a run_experiment CSV?)")
    idx = {c: header.index(c) for c in ("variant", "threads", "mops_per_sec")}
    tp = {}  # (variant, threads) -> mops_per_sec
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != len(header):
            return fail(f"line {lineno}: {len(row)} fields, want {len(header)}")
        try:
            tp[(row[idx["variant"]], int(row[idx["threads"]]))] = \
                float(row[idx["mops_per_sec"]])
        except ValueError:
            return fail(f"line {lineno}: bad threads/mops_per_sec")
    threads = max((t for _, t in tp), default=0)
    adaptive = tp.get(("lease-adaptive", threads))
    statics = {v: x for (v, t), x in tp.items()
               if t == threads and v.startswith("lease-") and v != "lease-adaptive"}
    if adaptive is None or not statics:
        return fail(f"need a lease-adaptive row and at least one static lease-* "
                    f"row at threads={threads}")
    best_v = max(statics, key=statics.get)
    worst_v = min(statics, key=statics.get)
    best, worst = statics[best_v], statics[worst_v]
    floor = args.adaptive_min_frac * best
    print(f"adaptive gate @{threads} threads: lease-adaptive = {adaptive:.3f} "
          f"mops/s; best static {best_v} = {best:.3f}, worst static "
          f"{worst_v} = {worst:.3f} (floor {floor:.3f} = "
          f"{args.adaptive_min_frac:.2f} x best)")
    failures = []
    if adaptive < floor:
        failures.append(f"lease-adaptive {adaptive:.3f} < {floor:.3f} "
                        f"({args.adaptive_min_frac:.2f}x best static {best_v})")
    if adaptive <= worst:
        failures.append(f"lease-adaptive {adaptive:.3f} <= worst static "
                        f"{worst_v} {worst:.3f} — the controller is not adapting")
    if failures:
        print("\nadaptive gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("adaptive gate passed.")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("candidate", help="benchmark JSON produced by --benchmark_out "
                    "(or a sweep CSV with --sweep)")
    ap.add_argument("--baseline", default=None)
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drift in either direction (default 0.25)")
    ap.add_argument("--update", action="store_true",
                    help="replace the baseline with the candidate and exit 0")
    ap.add_argument("--sweep", action="store_true",
                    help="candidate is a workload-sweep CSV: validate its schema "
                    "(and compare throughput if --baseline is a sweep CSV too)")
    ap.add_argument("--assert-mt-speedup", action="store_true",
                    help="assert BM_Fig3CounterSimThroughputMT at sim_threads:4 "
                    "is not slower than sim_threads:0 within the candidate JSON "
                    "(SKIPPED with exit 3 on hosts with < 4 CPUs)")
    ap.add_argument("--mt-min-ratio", type=float, default=0.95,
                    help="minimum sim_threads:4 / sim_threads:0 throughput ratio "
                    "for --assert-mt-speedup (default 0.95: 'not slower', with "
                    "noise headroom for shared CI runners)")
    ap.add_argument("--assert-openloop-scaling", action="store_true",
                    help="assert BM_OpenLoopClients per-op cost at clients:100000 "
                    "stays within --openloop-max-slowdown of clients:100 within "
                    "the candidate JSON (timer-wheel near-flat scaling)")
    ap.add_argument("--assert-adaptive", action="store_true",
                    help="candidate is bench/ablation_lease_time's per-bench CSV: "
                    "assert the lease-adaptive variant reaches --adaptive-min-frac "
                    "of the best static lease-* variant and beats the worst one "
                    "at the largest thread count")
    ap.add_argument("--adaptive-min-frac", type=float, default=0.8,
                    help="minimum lease-adaptive / best-static throughput fraction "
                    "for --assert-adaptive (default 0.8)")
    ap.add_argument("--openloop-max-slowdown", type=float, default=3.0,
                    help="maximum clients:100 / clients:100000 throughput ratio "
                    "for --assert-openloop-scaling (default 3.0; the wheel "
                    "measures ~1.2x, a linear scan ~1000x)")
    args = ap.parse_args()

    if args.sweep:
        return run_sweep_gate(args)
    if args.assert_mt_speedup:
        return run_mt_speedup_gate(args)
    if args.assert_openloop_scaling:
        return run_openloop_scaling_gate(args)
    if args.assert_adaptive:
        return run_adaptive_gate(args)
    if args.baseline is None:
        args.baseline = DEFAULT_BASELINE

    if args.update:
        with open(args.candidate, "r", encoding="utf-8") as f:
            check_release_build(args.candidate, json.load(f))
        shutil.copyfile(args.candidate, args.baseline)
        print(f"baseline updated: {os.path.relpath(args.baseline)}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"error: baseline {args.baseline} not found; create one with --update",
              file=sys.stderr)
        return 2

    base = load_throughputs(args.baseline)
    cand = load_throughputs(args.candidate)
    if not base or not cand:
        print("error: no comparable benchmark entries found", file=sys.stderr)
        return 2

    failures = []
    print(f"{'benchmark':<52} {'baseline':>12} {'candidate':>12} {'ratio':>7}")
    for name in sorted(base):
        base_tp, base_st = base[name]
        if name not in cand:
            failures.append(f"{name}: missing from candidate run")
            continue
        cand_tp, cand_st = cand[name]
        if base_st != cand_st:
            # Like-with-like only: a serial baseline must never gate a
            # parallel candidate (or vice versa) — same name or not.
            print(f"error: {name}: baseline is a sim_threads={base_st} series but "
                  f"candidate is sim_threads={cand_st}; serial and parallel runs "
                  "are separate series and cannot gate each other.",
                  file=sys.stderr)
            sys.exit(2)
        ratio = cand_tp / base_tp
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            verdict = "REGRESSION"
            failures.append(f"{name}: {ratio:.2f}x of baseline "
                            f"(below {1.0 - args.tolerance:.2f}x)")
        elif ratio > 1.0 + args.tolerance:
            verdict = "STALE-BASELINE"
            failures.append(f"{name}: {ratio:.2f}x of baseline "
                            f"(above {1.0 + args.tolerance:.2f}x; rerun with --update)")
        print(f"{name:<52} {base_tp:>12.3e} {cand_tp:>12.3e} {ratio:>6.2f}x  {verdict}")
    for name in sorted(set(cand) - set(base)):
        print(f"{name:<52} {'-':>12} {cand[name][0]:>12.3e}       new (not gated)")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
