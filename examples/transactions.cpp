// Copyright (c) 2026 lrsim authors. MIT license.
//
// Example: MultiLease for transactional workloads (Figure 4's TL2 setup).
//
// Bank-account transfers: each transaction locks two random accounts,
// moves money, and unlocks. Failed acquisitions abort and retry. Jointly
// leasing both lock words before the try-locks makes the two acquisitions
// behave like one: by the time the core owns both lines, the locks are
// almost always free, so aborts nearly disappear.
#include <cstdio>

#include "ds/tl2.hpp"
#include "lrsim.hpp"

using namespace lrsim;

namespace {

void run(TxLeaseMode mode, const char* label) {
  constexpr int kThreads = 32;
  constexpr int kTxns = 60;

  MachineConfig cfg;
  cfg.num_cores = kThreads;
  cfg.leases_enabled = true;
  Machine m{cfg};
  Tl2Bench bank{m, {.num_objects = 10, .lease_mode = mode, .compute_work = 50}};
  const std::uint64_t before = bank.total_value();

  for (int t = 0; t < kThreads; ++t) {
    m.spawn(t, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kTxns; ++i) {
        co_await bank.run_transaction(ctx);
        co_await ctx.work(ctx.rng().next_below(64));
      }
    });
  }
  const Cycle cycles = m.run();
  const Stats s = m.total_stats();
  const double abort_rate =
      static_cast<double>(s.txn_aborts) / static_cast<double>(s.txn_commits + s.txn_aborts);

  std::printf("%-12s %9llu cycles  %5.2f Mtx/s  aborts %5.1f%%  conserved=%s\n", label,
              static_cast<unsigned long long>(cycles),
              static_cast<double>(s.txn_commits) * 1e3 / static_cast<double>(cycles),
              100.0 * abort_rate, bank.total_value() == before ? "yes" : "NO!");
}

}  // namespace

int main() {
  std::printf("32 threads x 60 two-account transfers over 10 accounts:\n\n");
  run(TxLeaseMode::kNone, "base");
  run(TxLeaseMode::kFirst, "lease-first");
  run(TxLeaseMode::kBoth, "multi-lease");
  std::printf(
      "\nMultiLease acquires both lock lines in sorted order (deadlock-free,\n"
      "Proposition 3) and holds them through the commit: competing transactions\n"
      "queue at the coherence level instead of aborting at the lock level.\n");
  return 0;
}
