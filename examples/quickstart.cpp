// Copyright (c) 2026 lrsim authors. MIT license.
//
// Quickstart: build a 16-core simulated machine, run a contended lock-free
// stack with and without Lease/Release, and print the difference.
//
//   $ ./quickstart
//
// Workload code is ordinary-looking C++ coroutines: every memory operation
// is an awaitable that advances simulated time by the modeled cache /
// coherence latency.
#include <cstdio>

#include "ds/treiber_stack.hpp"
#include "lrsim.hpp"

using namespace lrsim;

namespace {

// Each simulated thread hammers the stack with pushes and pops.
Task<void> worker(Ctx& ctx, TreiberStack& stack, int ops) {
  for (int i = 0; i < ops; ++i) {
    if (ctx.rng().next_bool(0.5)) {
      co_await stack.push(ctx, 1 + ctx.rng().next_below(100));
    } else {
      co_await stack.pop(ctx);
    }
    co_await ctx.work(ctx.rng().next_below(40));  // a little local compute
  }
}

struct Result {
  double mops;
  double msgs_per_op;
};

Result run(bool use_leases) {
  MachineConfig cfg;
  cfg.num_cores = 16;
  cfg.leases_enabled = use_leases;  // the whole machine knows about leases...
  Machine m{cfg};

  // ...and the data structure opts in per Figure 1 of the paper: lease the
  // head-pointer line across the read..CAS window, release after the CAS.
  TreiberStack stack{m, {.use_lease = use_leases}};

  // Pre-populate so pops chase real nodes.
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 256; ++i) co_await stack.push(ctx, static_cast<std::uint64_t>(i));
  });
  m.run();

  const Cycle start = m.events().now();
  for (int core = 0; core < cfg.num_cores; ++core) {
    m.spawn(core, [&](Ctx& ctx) { return worker(ctx, stack, 100); });
  }
  m.run();

  const Stats s = m.total_stats();
  const double cycles = static_cast<double>(m.events().now() - start);
  return {static_cast<double>(16 * 100) * 1e3 / cycles, s.messages_per_op()};
}

}  // namespace

int main() {
  const Result base = run(false);
  const Result leased = run(true);
  std::printf("Treiber stack, 16 cores, 100%% updates:\n");
  std::printf("  base : %6.2f Mops/s, %5.1f coherence msgs/op\n", base.mops, base.msgs_per_op);
  std::printf("  lease: %6.2f Mops/s, %5.1f coherence msgs/op\n", leased.mops, leased.msgs_per_op);
  std::printf("  speedup from Lease/Release: %.2fx\n", leased.mops / base.mops);
  return 0;
}
