// Copyright (c) 2026 lrsim authors. MIT license.
//
// Example: what a lease actually does to a contended critical section.
//
// A TTS spin lock protects a shared counter. We run the same workload with
// the lock line leased for the duration of the critical section (Section 6
// of the paper, "Leases for TryLocks") and without, and print the coherence
// traffic side by side: with the lease, the holder never loses the line
// mid-critical-section, the unlock is an L1 hit, and waiters queue
// implicitly instead of bouncing the line.
#include <cstdio>

#include "ds/counter.hpp"
#include "lrsim.hpp"

using namespace lrsim;

namespace {

void run(CounterLockKind kind, const char* label) {
  constexpr int kThreads = 32;
  constexpr int kIncrements = 50;

  MachineConfig cfg;
  cfg.num_cores = kThreads;
  cfg.leases_enabled = true;
  Machine m{cfg};
  LockedCounter counter{m, kind, /*cs_work=*/50};

  for (int t = 0; t < kThreads; ++t) {
    m.spawn(t, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kIncrements; ++i) {
        co_await counter.increment(ctx);
        co_await ctx.work(ctx.rng().next_below(64));
      }
    });
  }
  const Cycle cycles = m.run();
  const Stats s = m.total_stats();

  std::printf("%-12s  %8llu cycles  %6.2f Mops/s  msgs/op %6.1f  misses/op %5.2f  nJ/op %7.2f\n",
              label, static_cast<unsigned long long>(cycles),
              static_cast<double>(s.ops_completed) * 1e3 / static_cast<double>(cycles),
              s.messages_per_op(), s.misses_per_op(), s.energy_per_op_nj());
  if (counter.value() != static_cast<std::uint64_t>(kThreads) * kIncrements) {
    std::printf("  !! lost updates: %llu\n", static_cast<unsigned long long>(counter.value()));
  }
}

}  // namespace

int main() {
  std::printf("32 threads incrementing one lock-protected counter (50-cycle critical section):\n\n");
  run(CounterLockKind::kTTS, "tts");
  run(CounterLockKind::kTTSLease, "tts+lease");
  run(CounterLockKind::kTicket, "ticket");
  run(CounterLockKind::kCLH, "clh");
  std::printf(
      "\nThe leased TTS lock keeps messages/op constant: the holder retains the lock line\n"
      "for the whole critical section, waiters park at the core (one) and at the\n"
      "directory (the rest), and the unlock store is a 1-cycle L1 hit.\n");
  return 0;
}
