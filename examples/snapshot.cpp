// Copyright (c) 2026 lrsim authors. MIT license.
//
// Example: cheap lock-free snapshots from the Release return value
// (Section 5, "Cheap Snapshots").
//
// "The snapshot operation first leases the lines corresponding to the
//  locations, reads them, and then releases them. If all the releases are
//  voluntary, the values read form a correct snapshot."
//
// A writer keeps three counters advancing in lockstep (x == y == z
// invariant between writes); readers snapshot all three. Without leases a
// naive triple-read tears constantly; with leases, one or two attempts
// suffice and the voluntary-release flags certify atomicity.
#include <cstdio>
#include <vector>

#include "lrsim.hpp"

using namespace lrsim;

namespace {

struct SnapshotStats {
  int attempts = 0;
  int torn_reads = 0;  // snapshots where the three values were inconsistent
};

Task<void> writer(Ctx& ctx, Addr x, Addr y, Addr z, int rounds) {
  for (int i = 1; i <= rounds; ++i) {
    co_await ctx.store(x, static_cast<std::uint64_t>(i));
    co_await ctx.store(y, static_cast<std::uint64_t>(i));
    co_await ctx.store(z, static_cast<std::uint64_t>(i));
    co_await ctx.work(30);
  }
}

/// Leased snapshot: retry until every release reports "voluntary".
Task<void> leased_reader(Ctx& ctx, Addr x, Addr y, Addr z, int snaps, SnapshotStats* out) {
  for (int i = 0; i < snaps; ++i) {
    while (true) {
      ++out->attempts;
      co_await ctx.lease(x, 2000);
      co_await ctx.lease(y, 2000);
      co_await ctx.lease(z, 2000);
      const std::uint64_t vx = co_await ctx.load(x);
      co_await ctx.work(ctx.rng().next_below(120));  // slow consumer...
      const std::uint64_t vy = co_await ctx.load(y);
      co_await ctx.work(ctx.rng().next_below(120));
      const std::uint64_t vz = co_await ctx.load(z);
      const bool ok_x = co_await ctx.release(x);
      const bool ok_y = co_await ctx.release(y);
      const bool ok_z = co_await ctx.release(z);
      if (ok_x && ok_y && ok_z) {
        // Certified: all three lines were held jointly across the reads.
        // The writer updates x before y before z, so a consistent cut can
        // differ by at most the in-flight store.
        if (!(vx >= vy && vy >= vz && vx - vz <= 1)) ++out->torn_reads;
        break;
      }
      // An involuntary release: the snapshot may be torn, retry.
    }
    co_await ctx.work(200);
  }
}

/// Naive snapshot: just read the three words; count visibly torn results.
Task<void> naive_reader(Ctx& ctx, Addr x, Addr y, Addr z, int snaps, SnapshotStats* out) {
  for (int i = 0; i < snaps; ++i) {
    ++out->attempts;
    const std::uint64_t vx = co_await ctx.load(x);
    co_await ctx.work(ctx.rng().next_below(120));  // same slow consumer
    const std::uint64_t vy = co_await ctx.load(y);
    co_await ctx.work(ctx.rng().next_below(120));
    const std::uint64_t vz = co_await ctx.load(z);
    if (!(vx >= vy && vy >= vz && vx - vz <= 1)) ++out->torn_reads;
    co_await ctx.work(200);
  }
}

}  // namespace

int main() {
  constexpr int kSnapshots = 200;

  for (bool leased : {false, true}) {
    MachineConfig cfg;
    cfg.num_cores = 3;
    cfg.leases_enabled = true;
    cfg.max_num_leases = 4;
    Machine m{cfg};
    Addr x = m.heap().alloc_line();
    Addr y = m.heap().alloc_line();
    Addr z = m.heap().alloc_line();

    SnapshotStats stats;
    m.spawn(0, [&](Ctx& ctx) { return writer(ctx, x, y, z, 3000); });
    if (leased) {
      m.spawn(1, [&](Ctx& ctx) { return leased_reader(ctx, x, y, z, kSnapshots, &stats); });
      m.spawn(2, [&](Ctx& ctx) { return leased_reader(ctx, x, y, z, kSnapshots, &stats); });
    } else {
      m.spawn(1, [&](Ctx& ctx) { return naive_reader(ctx, x, y, z, kSnapshots, &stats); });
      m.spawn(2, [&](Ctx& ctx) { return naive_reader(ctx, x, y, z, kSnapshots, &stats); });
    }
    m.run();

    std::printf("%-14s snapshots=%d attempts=%d torn=%d\n", leased ? "lease-certified" : "naive",
                2 * kSnapshots, stats.attempts, stats.torn_reads);
  }
  std::printf("\nLease-certified snapshots are never torn: a snapshot is only accepted when\n"
              "every release reports it was voluntary (the lines were held throughout).\n");
  return 0;
}
