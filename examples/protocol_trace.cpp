// Copyright (c) 2026 lrsim authors. MIT license.
//
// Example: watch the coherence protocol and a lease at work, event by event.
//
// Two cores fight over one counter; we trace every protocol event on its
// cache line and print the timeline. Run it twice mentally: without the
// lease, core 1's probe would steal the line mid-critical-section; with it,
// the probe parks and is serviced the instant core 0 releases.
#include <cstdio>
#include <iostream>

#include "lrsim.hpp"

using namespace lrsim;

int main() {
  MachineConfig cfg;
  cfg.num_cores = 2;
  cfg.leases_enabled = true;
  Machine m{cfg};
  const Addr counter = m.heap().alloc_line();
  Tracer& tracer = m.enable_tracing(/*capacity=*/128, line_of(counter));

  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(counter, 5000);            // bring the line in, leased
    const std::uint64_t v = co_await ctx.load(counter);
    co_await ctx.work(800);                       // "compute" while leased
    co_await ctx.store(counter, v + 1);           // still an L1 hit
    co_await ctx.release(counter);                // parked probe fires here
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(300);                       // arrive mid-lease
    const std::uint64_t v = co_await ctx.load(counter);
    std::printf(">> core 1 finally reads %llu at cycle %llu\n",
                static_cast<unsigned long long>(v),
                static_cast<unsigned long long>(ctx.now()));
    co_return;
  });
  m.run();

  std::printf("\nProtocol timeline for the counter line (0x%llx):\n\n",
              static_cast<unsigned long long>(line_of(counter)));
  tracer.dump(std::cout);
  std::printf(
      "\nReading the trace: core 0's lease-grant pins the line; core 1's load\n"
      "triggers a dir-service whose probe *parks* at core 0 (probe-park). The\n"
      "voluntary release services it immediately — core 1 waits exactly as long\n"
      "as core 0's critical section, with zero retries and zero extra messages.\n");
  return 0;
}
