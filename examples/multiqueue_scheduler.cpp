// Copyright (c) 2026 lrsim authors. MIT license.
//
// Example: a relaxed priority scheduler built on MultiQueues + MultiLease.
//
// A classic scheduling pattern the paper's Algorithm 4 targets: worker
// threads pull the (approximately) earliest-deadline task from a set of
// per-queue heaps, executing the MultiLease-guarded two-choice deleteMin.
// We verify the relaxation quality: with M queues, the rank error of each
// pop is small, and leases improve throughput without changing the
// semantics.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "ds/multiqueue.hpp"
#include "lrsim.hpp"

using namespace lrsim;

namespace {

struct SchedResult {
  Cycle cycles = 0;
  std::vector<std::uint64_t> pop_order;  // deadlines in pop order
};

SchedResult run(bool use_lease, int workers, int tasks_per_worker) {
  MachineConfig cfg;
  cfg.num_cores = workers;
  cfg.leases_enabled = use_lease;
  Machine m{cfg};
  MultiQueue mq{m, {.num_queues = 8, .capacity = 16384, .use_lease = use_lease}};

  SchedResult out;
  // Seed the scheduler with "tasks" (deadlines).
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < workers * tasks_per_worker; ++i) {
      co_await mq.insert(ctx, 1 + ctx.rng().next_below(1'000'000));
    }
  });
  m.run();

  const Cycle start = m.events().now();
  for (int w = 0; w < workers; ++w) {
    m.spawn(w, [&, tasks_per_worker](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < tasks_per_worker; ++i) {
        std::optional<std::uint64_t> deadline = co_await mq.delete_min(ctx);
        if (deadline.has_value()) {
          out.pop_order.push_back(*deadline);
          co_await ctx.work(100);  // "execute" the task
        }
      }
    });
  }
  m.run();
  out.cycles = m.events().now() - start;
  return out;
}

/// Relaxation quality: how far from sorted is the pop order? We count
/// inversions against a sliding window — a proxy for rank error.
double disorder(const std::vector<std::uint64_t>& order) {
  if (order.size() < 2) return 0.0;
  std::size_t inversions = 0, pairs = 0;
  const std::size_t window = 16;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(order.size(), i + window); ++j) {
      ++pairs;
      if (order[i] > order[j]) ++inversions;
    }
  }
  return static_cast<double>(inversions) / static_cast<double>(pairs);
}

}  // namespace

int main() {
  constexpr int kWorkers = 16;
  constexpr int kTasks = 60;

  const SchedResult base = run(false, kWorkers, kTasks);
  const SchedResult leased = run(true, kWorkers, kTasks);

  std::printf("MultiQueue scheduler, %d workers x %d tasks, 8 queues:\n", kWorkers, kTasks);
  std::printf("  base : %8llu cycles, windowed disorder %.3f\n",
              static_cast<unsigned long long>(base.cycles), disorder(base.pop_order));
  std::printf("  lease: %8llu cycles, windowed disorder %.3f\n",
              static_cast<unsigned long long>(leased.cycles), disorder(leased.pop_order));
  std::printf("  speedup %.2fx with the same relaxed-priority semantics\n",
              static_cast<double>(base.cycles) / static_cast<double>(leased.cycles));
  return 0;
}
